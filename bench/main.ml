(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5) on the simulated machine, plus the space measurements
   behind the §1 claims, the §6 ablations, and a Bechamel microbenchmark
   suite measuring the simulator's own wall-clock costs.

     dune exec bench/main.exe               # everything, quick settings
     dune exec bench/main.exe -- fig4       # one figure
     dune exec bench/main.exe -- fig4 --duration 2000000 --csv

   Throughput numbers are virtual-time (2000 cycles/µs); only shapes are
   comparable with the paper, never absolute values. *)

let pf fmt = Format.printf fmt

let chart_mode = ref false

(* Every table an experiment prints is also captured here (newest first)
   so --json can write the machine-readable BENCH_<experiment>.json
   report after the run. *)
let captured_tables : Obs.Json.t list ref = ref []

let emit ~csv table =
  captured_tables := Workload.Report.to_json table :: !captured_tables;
  if csv then Workload.Report.print_csv Format.std_formatter table
  else begin
    Workload.Report.print Format.std_formatter table;
    if !chart_mode then Workload.Report.plot Format.std_formatter table
  end

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)

let run_fig1 ~duration ~seed ~csv =
  let results = Workload.Queue_bench.run ~duration ~seed () in
  emit ~csv (Workload.Queue_bench.to_table results)

let run_latency ~duration:_ ~seed ~csv =
  let results = Workload.Latency.run ~seed () in
  emit ~csv (Workload.Latency.to_table results)

let run_fig3 ~duration ~seed ~csv =
  let results = Workload.Collect_dominated.run ~duration ~seed () in
  emit ~csv (Workload.Collect_dominated.to_table results)

let run_fig4 ~duration ~seed ~csv =
  let results = Workload.Collect_update.run_fig4 ~duration ~seed () in
  emit ~csv
    (Workload.Collect_update.to_table
       ~title:"Figure 4: Collect-Update (1 collector, 15 updaters)" results)

let run_fig5 ~duration ~seed ~csv =
  let results = Workload.Collect_update.run_fig5 ~duration ~seed () in
  emit ~csv
    (Workload.Collect_update.to_table
       ~title:"Figure 5: Step sizes for ArrayDynAppendDereg" results)

let run_fig6 ~duration ~seed ~csv =
  let results = Workload.Collect_update.run_fig6 ~duration ~seed () in
  emit ~csv (Workload.Collect_update.fig6_table results)

let run_fig7 ~duration ~seed ~csv =
  let results = Workload.Collect_dereg.run ~duration ~seed () in
  emit ~csv (Workload.Collect_dereg.to_table results)

let run_fig8 ~duration ~seed ~csv =
  (* duration here scales the phase length: 6 phases per run *)
  let phase_len = max 200_000 (duration / 2) in
  let results = Workload.Phased.run ~phase_len ~seed () in
  emit ~csv (Workload.Phased.to_table results)

(* Abort-rate telemetry behind Figures 4/5: the fraction of transaction
   attempts that abort, per algorithm and update period. This is the
   mechanism the paper invokes to explain every degradation curve. *)
let run_aborts ~duration ~seed ~csv =
  let steps = [ Collect.Intf.Fixed 8; Collect.Intf.Fixed 32; Collect.Intf.Adaptive ] in
  let maker = Option.get (Collect.find_maker "ArrayDynAppendDereg") in
  let periods = [ 100_000; 20_000; 8_000; 2_000; 800; 400 ] in
  let rows =
    List.map
      (fun period ->
        ( Workload.Collect_update.period_label period,
          List.map
            (fun step ->
              let r =
                Workload.Collect_update.run_one maker ~updaters:15 ~period ~duration ~step
                  ~seed
              in
              (* Updater transactions essentially never abort, so the abort
                 count is attributable to the collector's chunks. *)
              let collects =
                int_of_float
                  (r.throughput *. float_of_int duration
                  /. float_of_int Workload.Driver.cycles_per_us)
              in
              if collects = 0 then None
              else Some (float_of_int r.aborts /. float_of_int collects))
            steps ))
      periods
  in
  emit ~csv
    {
      Workload.Report.title =
        "Abort telemetry: ArrayDynAppendDereg collect-update";
      xlabel = "period";
      unit = "aborts per collect";
      columns = List.map Workload.Collect_update.step_label steps;
      rows;
    }

(* The robustness experiment: deterministic thread kills, stalls and
   spurious aborts against every algorithm, with the section 2.3 checker as
   the oracle. Duration is fixed by the fault schedule, so --duration is
   ignored; --seed reproduces the exact run. *)
let run_chaos ~duration:_ ~seed ~csv:_ =
  let summary = Workload.Chaos_bench.run_all ~seed () in
  Workload.Chaos_bench.report Format.std_formatter summary

let run_space ~duration:_ ~seed ~csv =
  emit ~csv
    (Workload.Space_bench.to_table ~title:"Space: queues at peak vs drained"
       (Workload.Space_bench.queue_space ~seed ()));
  emit ~csv
    (Workload.Space_bench.to_table ~title:"Space: collect objects at peak vs deregistered"
       (Workload.Space_bench.collect_space ~seed ()))

(* The coherence-contention profile: run the paper's two extremes of
   reclamation-induced cache traffic — hand-over-hand reference counting
   (every traversal writes reference counts, starting at the list header,
   so the header line ping-pongs between all cores) and ROP (readers
   publish hazard pointers to per-thread slots and nodes are reclaimed in
   bulk) — and attribute every coherence transfer to the labeled region
   it hit. The merged ranked heatmap is the paper's §5 "why HoHRC loses"
   argument made mechanical: the HoHRC header line outranks every ROP
   line. *)
let run_contend ~duration ~seed ~csv =
  let saved = Workload.Driver.obs () in
  Workload.Driver.set_obs { saved with obs_profile = true };
  let hohrc = Option.get (Collect.find_maker "ListHoHRC") in
  let r =
    Workload.Collect_update.run_one hohrc ~updaters:15 ~period:1_000 ~duration
      ~step:(Collect.Intf.Fixed 8) ~seed
  in
  let rop = Option.get (Hqueue.find_maker "MichaelScott+ROP") in
  (* Matched operation budget: per queue operation the ROP queue is an
     order of magnitude faster than a HoHRC traversal, so equal wall
     windows would compare 10x the operations and swamp the per-op
     story. A window one twelfth as long puts both workloads in the same
     operation ballpark; the context table above is per-microsecond and
     unaffected. *)
  let q =
    Workload.Queue_bench.run_one rop ~threads:4 ~duration:(max 20_000 (duration / 12))
      ~prefill:64 ~seed
  in
  let profs = Workload.Driver.profilers () in
  Workload.Driver.set_obs saved;
  emit ~csv
    {
      Workload.Report.title = "Contention workloads (context)";
      xlabel = "workload";
      unit = "ops/us";
      columns = [ "throughput" ];
      rows =
        [
          ("ListHoHRC collect-update", [ Some r.throughput ]);
          ("MichaelScott+ROP queue", [ Some q.throughput ]);
        ];
    };
  (* Per-machine heatmaps, then the merged ranking across machines. *)
  List.iter
    (fun (mach, p) ->
      pf "== Contention: %s (%d transfers) ==@." mach (Obs.Profiler.total_transfers p);
      Obs.Profiler.print ~top:8 Format.std_formatter p)
    profs;
  let entries =
    List.concat_map
      (fun (mach, p) ->
        List.map (fun ls -> (mach, ls)) (Obs.Profiler.lines ~top:12 p))
      profs
  in
  let ranked =
    List.sort
      (fun (_, a) (_, b) ->
        compare b.Obs.Profiler.ls_transfers a.Obs.Profiler.ls_transfers)
      entries
  in
  let top n l = List.filteri (fun i _ -> i < n) l in
  pf "== Contention: all machines ranked by coherence transfers ==@.";
  Obs.Table.print_cols Format.std_formatter
    [ "machine"; "line"; "region"; "transfers"; "miss cycles"; "queue wait"; "peak sharers" ]
    (List.map
       (fun (mach, ls) ->
         [
           mach;
           string_of_int ls.Obs.Profiler.ls_line;
           ls.ls_region;
           string_of_int ls.ls_transfers;
           string_of_int ls.ls_cycles;
           string_of_int ls.ls_wait;
           string_of_int ls.ls_max_sharers;
         ])
       (top 16 ranked));
  pf "@."

(* ------------------------------------------------------------------ *)
(* Ablations (paper §6)                                                *)

(* TLE: the paper notes the algorithms can run without any transactional
   progress guarantee by falling back to a lock (§6). Compare native retry
   against TLE fallback under contention. *)
let ablate_tle ~duration ~seed ~csv =
  let maker = Option.get (Collect.find_maker "ArrayDynAppendDereg") in
  let run_with config =
    let m = Workload.Driver.machine ~htm_config:config ~seed () in
    let cfg =
      { Collect.Intf.max_slots = 128; num_threads = 16; step = Collect.Intf.Fixed 16;
        min_size = 4 }
    in
    let inst = maker.make m.htm m.boot cfg in
    let deadline = Workload.Driver.warmup + duration in
    let collects = ref 0 in
    let measuring = ref true in
    let collector ctx =
      let buf = Sim.Ibuf.create () in
      collects :=
        Workload.Driver.measured_loop ctx ~deadline (fun () ->
            Sim.Ibuf.clear buf;
            inst.collect ctx buf);
      measuring := false
    in
    let updater ctx =
      let hs = Array.init 4 (fun _ -> inst.register ctx (Workload.Driver.fresh_value ())) in
      Workload.Driver.periodic_loop ctx ~deadline ~period:2_000 (fun () ->
          inst.update ctx hs.(0) (Workload.Driver.fresh_value ()));
      while !measuring do
        Sim.tick ctx 2000
      done;
      Array.iter (fun h -> inst.deregister ctx h) hs
    in
    Sim.run ~seed (Array.init 16 (fun i -> if i = 0 then collector else updater));
    let st = Htm.stats m.htm in
    (Workload.Driver.ops_per_us ~ops:!collects ~duration, st.lock_fallbacks)
  in
  let native, _ = run_with Htm.default_config in
  let tle, fallbacks = run_with { Htm.default_config with tle = Htm.Tle_after 4 } in
  emit ~csv
    {
      Workload.Report.title = "Ablation: TLE fallback (collect-update, period 2k)";
      xlabel = "mode";
      unit = "ops/us";
      columns = [ "throughput"; "lock fallbacks" ];
      rows =
        [
          ("native retry", [ Some native; Some 0.0 ]);
          ("TLE after 4 aborts", [ Some tle; Some (float_of_int fallbacks) ]);
        ];
    }

(* Sandboxing (paper footnote 1 / §6): a transaction that loads a pointer,
   stalls, and dereferences it after a concurrent thread has freed the
   target — exactly the pattern of FastCollect's unpinned traversal cursor.
   A sandboxed HTM aborts and retries; an unsandboxed one segfaults. *)
let ablate_sandbox ~duration:_ ~seed ~csv =
  let run_with sandboxed =
    let config = { Htm.default_config with sandboxed } in
    let mem = Simmem.create () in
    let htm = Htm.create ~config mem in
    let boot = Sim.boot ~seed () in
    let box = Simmem.malloc mem boot 1 in
    let target = Simmem.malloc mem boot 2 in
    Simmem.write mem boot target 41;
    Simmem.write mem boot box target;
    let reader ctx =
      let v =
        Htm.atomic htm ctx (fun tx ->
            let p = Htm.read tx box in
            (* stall with the pointer in hand *)
            Sim.advance_to ctx (Sim.clock ctx + 2_000);
            Htm.read tx p)
      in
      ignore v
    in
    let mutator ctx =
      Sim.advance_to ctx 500;
      let fresh = Simmem.malloc mem ctx 2 in
      Simmem.write mem ctx fresh 42;
      Simmem.write mem ctx box fresh;
      Simmem.free mem ctx target
    in
    match Sim.run ~seed [| reader; mutator |] with
    | () -> "completed (transaction aborted and retried)"
    | exception Simmem.Fault f -> Format.asprintf "SEGFAULT: %a" Simmem.pp_fault f
  in
  let on = run_with true in
  let off = run_with false in
  ignore csv;
  pf "== Ablation: sandboxing (dangling dereference inside a transaction) ==@.";
  pf "sandboxed HTM:     %s@." on;
  pf "unsandboxed HTM:   %s@.@." off

(* Store-buffer capacity sweep: the adaptive controller must discover the
   largest step each buffer admits. *)
let ablate_store_buffer ~duration ~seed ~csv =
  let maker = Option.get (Collect.find_maker "ArrayDynAppendDereg") in
  let rows =
    List.map
      (fun sb ->
        let config = { Htm.default_config with store_buffer = sb } in
        let m = Workload.Driver.machine ~htm_config:config ~seed () in
        let cfg =
          { Collect.Intf.max_slots = 128; num_threads = 2; step = Collect.Intf.Adaptive;
            min_size = 4 }
        in
        let inst = maker.make m.htm m.boot cfg in
        let deadline = Workload.Driver.warmup + duration in
        let collects = ref 0 in
        let measuring = ref true in
        let bodies =
          [|
            (fun ctx ->
              let buf = Sim.Ibuf.create () in
              collects :=
                Workload.Driver.measured_loop ctx ~deadline (fun () ->
                    Sim.Ibuf.clear buf;
                    inst.collect ctx buf);
              measuring := false);
            (fun ctx ->
              let hs =
                Array.init 64 (fun _ -> inst.register ctx (Workload.Driver.fresh_value ()))
              in
              while !measuring do
                Sim.tick ctx 2000
              done;
              Array.iter (fun h -> inst.deregister ctx h) hs);
          |]
        in
        Sim.run ~seed bodies;
        let top_step =
          List.fold_left (fun acc (s, _) -> max acc s) 0 (inst.step_histogram ())
        in
        ( string_of_int sb,
          [
            Some (Workload.Driver.ops_per_us ~ops:!collects ~duration);
            Some (float_of_int top_step);
          ] ))
      [ 8; 16; 32; 64 ]
  in
  emit ~csv
    {
      Workload.Report.title = "Ablation: store-buffer capacity (adaptive step discovery)";
      xlabel = "buffer";
      unit = "ops/us";
      columns = [ "collect throughput"; "largest step setting" ];
      rows;
    }

let run_ablate ~duration ~seed ~csv =
  ablate_tle ~duration ~seed ~csv;
  ablate_sandbox ~duration ~seed ~csv;
  ablate_store_buffer ~duration ~seed ~csv

(* ------------------------------------------------------------------ *)
(* Extension variants (paper §3.1.2 and §4.1, described but not
   implemented there)                                                  *)

(* The §3.1.2 starvation scenario: a large stable handle population keeps
   collects long, while churners rapidly cycle one volatile slot each.
   Plain FastCollect restarts on every deregister anywhere; the deferred
   variant restarts only when its own cursor's node is hit. *)
let ext_starvation ~duration ~seed mk churn_period =
  let m = Workload.Driver.machine ~seed () in
  let churners = 15 in
  let cfg =
    { Collect.Intf.max_slots = 256; num_threads = churners + 1;
      step = Collect.Intf.Adaptive; min_size = 4 }
  in
  let inst = mk.Collect.Intf.make m.htm m.boot cfg in
  let deadline = Workload.Driver.warmup + duration in
  let collects = ref 0 in
  let measuring = ref true in
  let collector ctx =
    let buf = Sim.Ibuf.create () in
    collects :=
      Workload.Driver.measured_loop ctx ~deadline (fun () ->
          Sim.Ibuf.clear buf;
          inst.collect ctx buf);
    measuring := false
  in
  let churner ctx =
    let stable =
      Array.init 4 (fun _ -> inst.register ctx (Workload.Driver.fresh_value ()))
    in
    let volatile = ref (inst.register ctx (Workload.Driver.fresh_value ())) in
    let next = ref Workload.Driver.warmup in
    while !next < deadline do
      Sim.advance_to ctx !next;
      inst.deregister ctx !volatile;
      Sim.advance_to ctx (!next + (churn_period / 2));
      volatile := inst.register ctx (Workload.Driver.fresh_value ());
      next := !next + churn_period
    done;
    while !measuring do
      Sim.tick ctx 2000
    done;
    inst.deregister ctx !volatile;
    Array.iter (fun h -> inst.deregister ctx h) stable
  in
  Sim.run ~seed (Array.init (churners + 1) (fun i -> if i = 0 then collector else churner));
  inst.destroy m.boot;
  Workload.Driver.ops_per_us ~ops:!collects ~duration

let run_ext ~duration ~seed ~csv =
  let fc = Option.get (Collect.find_maker "ListFastCollect") in
  let fcd = Option.get (Collect.find_maker "ListFastCollectDeferred") in
  let periods = [ 50_000; 20_000; 10_000; 5_000; 2_000; 1_000 ] in
  let rows =
    List.map
      (fun p ->
        ( Workload.Collect_update.period_label p,
          [
            Some (ext_starvation ~duration ~seed fc p);
            Some (ext_starvation ~duration ~seed fcd p);
          ] ))
      periods
  in
  emit ~csv
    {
      Workload.Report.title =
        "Extension: deferred-free FastCollect, 60 stable handles + 15 churning (section \
         3.1.2)";
      xlabel = "churn period";
      unit = "ops/us";
      columns = [ "ListFastCollect"; "ListFastCollectDeferred" ];
      rows;
    };
  (* Michael-Scott reclaimed through a Dynamic Collect object vs the fixed
     hazard array: same discipline, dynamic announcement space. *)
  let queue_rows =
    List.map
      (fun threads ->
        let one name =
          let mk = Option.get (Hqueue.find_maker name) in
          let m = Workload.Driver.machine ~seed () in
          let q = mk.make m.htm m.boot ~num_threads:threads in
          let deadline = Workload.Driver.warmup + duration in
          let ops = Array.make threads 0 in
          Sim.run ~seed
            (Array.init threads (fun i ->
                 fun ctx ->
                   ops.(i) <-
                     Workload.Driver.measured_loop ctx ~deadline (fun () ->
                         if Sim.Rng.bool (Sim.rng ctx) then
                           q.enqueue ctx (Workload.Driver.fresh_value ())
                         else ignore (q.dequeue ctx))));
          q.destroy m.boot;
          Workload.Driver.ops_per_us ~ops:(Array.fold_left ( + ) 0 ops) ~duration
        in
        ( string_of_int threads,
          [ Some (one "MichaelScott+ROP"); Some (one "MichaelScott+Collect") ] ))
      [ 2; 4; 8; 16 ]
  in
  emit ~csv
    {
      Workload.Report.title =
        "Extension: reclamation via fixed hazard array vs Dynamic Collect (section 1.2)";
      xlabel = "threads";
      unit = "ops/us";
      columns = [ "MichaelScott+ROP"; "MichaelScott+Collect" ];
      rows = queue_rows;
    };
  (* Update-optimised AppendDereg: faster updates, dearer collects. *)
  let variants =
    List.filter_map Collect.find_maker [ "ArrayDynAppendDereg"; "ArrayDynAppendFastUpd" ]
  in
  let lat = Workload.Latency.run ~makers:variants ~seed () in
  emit ~csv
    { (Workload.Latency.to_table lat) with
      title = "Extension: update latency of the section 4.1 variant" };
  let coll =
    List.concat_map
      (fun period ->
        List.map
          (fun mk ->
            Workload.Collect_update.run_one mk ~updaters:15 ~period ~duration
              ~step:(Collect.Intf.Fixed 32) ~seed)
          variants)
      [ 100_000; 10_000; 2_000 ]
  in
  emit ~csv
    (Workload.Collect_update.to_table
       ~title:"Extension: collect throughput of the section 4.1 variant" coll)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: wall-clock cost of the simulator itself.  *)

let micro_tests () =
  let open Bechamel in
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  let word = Simmem.malloc mem boot 8 in
  let tx_rw =
    Test.make ~name:"htm: atomic read+write"
      (Staged.stage (fun () ->
           Htm.atomic htm boot (fun tx -> Htm.write tx word (Htm.read tx word + 1))))
  in
  let mem_rw =
    Test.make ~name:"simmem: read+write"
      (Staged.stage (fun () -> Simmem.write mem boot word (Simmem.read mem boot word + 1)))
  in
  let q = Hqueue.Htm_queue.maker.make htm boot ~num_threads:2 in
  let queue_cycle =
    Test.make ~name:"htm queue: enqueue+dequeue"
      (Staged.stage (fun () ->
           q.enqueue boot 1;
           ignore (q.dequeue boot)))
  in
  let maker = Option.get (Collect.find_maker "ArrayDynAppendDereg") in
  let inst =
    maker.make htm boot
      { Collect.Intf.max_slots = 128; num_threads = 2; step = Collect.Intf.Fixed 32;
        min_size = 4 }
  in
  let (_ : int array) = Array.init 64 (fun i -> inst.register boot (i + 1)) in
  let buf = Sim.Ibuf.create () in
  let collect64 =
    Test.make ~name:"collect: ArrayDynAppendDereg over 64 slots"
      (Staged.stage (fun () ->
           Sim.Ibuf.clear buf;
           inst.collect boot buf))
  in
  let spawn =
    Test.make ~name:"sim: run of 4 trivial threads"
      (Staged.stage (fun () -> Sim.run ~seed:1 (Array.make 4 (fun ctx -> Sim.tick ctx 10))))
  in
  [ mem_rw; tx_rw; queue_cycle; collect64; spawn ]

let run_micro ~duration:_ ~seed:_ ~csv:_ =
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  pf "== Microbenchmarks: wall-clock cost of simulator primitives ==@.";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysis = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> pf "%-45s %8.1f ns/run@." name est
          | Some _ | None -> pf "%-45s (no estimate)@." name)
        analysis)
    (micro_tests ());
  pf "@."

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)

type figure = {
  fname : string;
  doc : string;
  default_duration : int;
  frun : duration:int -> seed:int -> csv:bool -> unit;
}

let figures =
  [
    { fname = "fig1"; doc = "queue throughput vs threads"; default_duration = 300_000;
      frun = run_fig1 };
    { fname = "latency"; doc = "section 5.1 update latency"; default_duration = 0;
      frun = run_latency };
    { fname = "fig3"; doc = "collect-dominated mixed workload"; default_duration = 400_000;
      frun = run_fig3 };
    { fname = "fig4"; doc = "collect-update period sweep"; default_duration = 400_000;
      frun = run_fig4 };
    { fname = "fig5"; doc = "step-size comparison"; default_duration = 300_000;
      frun = run_fig5 };
    { fname = "fig6"; doc = "adaptive step-size distribution"; default_duration = 400_000;
      frun = run_fig6 };
    { fname = "fig7"; doc = "collect-(de)register sweep"; default_duration = 400_000;
      frun = run_fig7 };
    { fname = "fig8"; doc = "phased registered-slot count"; default_duration = 2_000_000;
      frun = run_fig8 };
    { fname = "space"; doc = "space usage at quiescence"; default_duration = 0;
      frun = run_space };
    { fname = "contend"; doc = "coherence-contention profile: HoHRC vs ROP";
      default_duration = 300_000; frun = run_contend };
    { fname = "chaos"; doc = "fault injection: crashes, stalls, spurious aborts"; default_duration = 0;
      frun = run_chaos };
    { fname = "aborts"; doc = "abort-rate telemetry behind figs 4/5"; default_duration = 300_000;
      frun = run_aborts };
    { fname = "ablate"; doc = "section 6 ablations"; default_duration = 200_000;
      frun = run_ablate };
    { fname = "ext"; doc = "paper-described but unimplemented variants"; default_duration = 300_000;
      frun = run_ext };
    { fname = "micro"; doc = "bechamel microbenchmarks"; default_duration = 0;
      frun = run_micro };
  ]

let run_all ~seed ~csv =
  List.iter (fun f -> f.frun ~duration:f.default_duration ~seed ~csv) figures

(* ------------------------------------------------------------------ *)
(* Observability plumbing: --trace / --metrics / --json                *)

(* The abort breakdown and cycle totals of the BENCH_<experiment>.json
   report, read back out of the aggregate metrics registry. *)
let summary_of_metrics reg =
  let snap = Obs.Metrics.snapshot reg in
  let counter name =
    match List.assoc_opt name snap with
    | Some (Obs.Metrics.Counter { total; _ }) -> total
    | _ -> 0
  in
  let hist name =
    match List.assoc_opt name snap with
    | Some (Obs.Metrics.Hist buckets) ->
        Obs.Json.List
          (List.map (fun (lo, n) -> Obs.Json.List [ Obs.Json.Int lo; Obs.Json.Int n ]) buckets)
    | _ -> Obs.Json.List []
  in
  let abort_reasons = [ "conflict"; "overflow"; "illegal"; "explicit"; "lock_held"; "spurious" ] in
  Obs.Json.Obj
    [
      ("commits", Obs.Json.Int (counter "htm.commits"));
      ( "aborts",
        Obs.Json.Obj
          (List.map (fun r -> (r, Obs.Json.Int (counter ("htm.aborts." ^ r)))) abort_reasons) );
      ("lock_fallbacks", Obs.Json.Int (counter "htm.fallbacks"));
      ( "cycles",
        Obs.Json.Obj
          [
            ("committed_total", Obs.Json.Int (counter "htm.commit_cycles_total"));
            ("commit_hist", hist "htm.commit_cycles");
            ("queue_wait_hist", hist "mem.queue_wait");
          ] );
      ( "mem",
        Obs.Json.Obj
          (List.map
             (fun n -> (n, Obs.Json.Int (counter ("mem." ^ n))))
             [ "reads"; "read_misses"; "writes"; "write_misses"; "atomics"; "allocs"; "frees" ])
      );
    ]

let bench_json ~experiment ~duration ~seed ~metrics =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "bench/1");
      ("experiment", Obs.Json.Str experiment);
      ( "params",
        Obs.Json.Obj
          [ ("duration", Obs.Json.Int duration); ("seed", Obs.Json.Int seed) ] );
      ("seed", Obs.Json.Int seed);
      ("tables", Obs.Json.List (List.rev !captured_tables));
      ( "summary",
        match metrics with Some r -> summary_of_metrics r | None -> Obs.Json.Null );
    ]

(* Wrap one experiment run with the requested sinks: install them via
   [Driver.set_obs] (so every machine the workloads build attaches
   itself), run, then write the artifact files. *)
let run_with_obs ~fname ~frun ~duration ~seed ~csv ~json ~trace ~metrics =
  let tracer = match trace with None -> None | Some _ -> Some (Obs.Tracer.create ()) in
  let mreg =
    if json || metrics <> None then Some (Obs.Metrics.create ()) else None
  in
  Workload.Driver.set_obs
    { obs_tracer = tracer; obs_metrics = mreg; obs_profile = false };
  captured_tables := [];
  frun ~duration ~seed ~csv;
  (match (trace, tracer) with
  | Some file, Some tr ->
      Obs.Tracer.write_file tr file;
      pf "trace: %d events (%d dropped) -> %s@." (Obs.Tracer.recorded tr)
        (Obs.Tracer.dropped tr) file
  | _ -> ());
  (match (metrics, mreg) with
  | Some file, Some r ->
      Obs.Json.write_file file (Obs.Metrics.to_json r);
      pf "metrics -> %s@." file
  | _ -> ());
  if json then begin
    let file = Printf.sprintf "BENCH_%s.json" fname in
    Obs.Json.write_file file (bench_json ~experiment:fname ~duration ~seed ~metrics:mreg);
    pf "bench report -> %s@." file
  end;
  Workload.Driver.set_obs Workload.Driver.no_obs

open Cmdliner

let duration_arg default =
  let doc = "Measured window in virtual cycles (2000 cycles = 1 us)." in
  Arg.(value & opt int default & info [ "duration"; "d" ] ~doc)

let seed_arg = Arg.(value & opt int 1 & info [ "seed"; "s" ] ~doc:"Experiment seed.")
let csv_arg = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of tables.")

let chart_arg =
  Arg.(value & flag & info [ "chart" ] ~doc:"Also draw each table as an ASCII chart.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a virtual-time event trace of the run and write it to $(docv) as Chrome \
           trace_event JSON (open in Perfetto; read microseconds as simulated cycles).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write the aggregated metrics registry snapshot to $(docv) as JSON.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Also write BENCH_<experiment>.json: the printed tables plus the abort breakdown \
           and cycle totals, machine-readable.")

let cmd_of_figure f =
  let action duration seed csv chart trace metrics json =
    chart_mode := chart;
    run_with_obs ~fname:f.fname ~frun:f.frun ~duration ~seed ~csv ~json ~trace ~metrics
  in
  Cmd.v
    (Cmd.info f.fname ~doc:f.doc)
    Term.(
      const action $ duration_arg f.default_duration $ seed_arg $ csv_arg $ chart_arg
      $ trace_arg $ metrics_arg $ json_arg)

let all_action seed csv chart trace metrics json =
  chart_mode := chart;
  run_with_obs ~fname:"all"
    ~frun:(fun ~duration:_ ~seed ~csv -> run_all ~seed ~csv)
    ~duration:0 ~seed ~csv ~json ~trace ~metrics

let all_cmd =
  Cmd.v
    (Cmd.info "all" ~doc:"run every figure and table (default)")
    Term.(
      const all_action $ seed_arg $ csv_arg $ chart_arg $ trace_arg $ metrics_arg $ json_arg)

(* CI gate: parse artifact files with the strict in-repo JSON parser and
   fail loudly on the first invalid one. *)
let validate_cmd =
  let files = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE") in
  let action files =
    let ok = ref true in
    List.iter
      (fun file ->
        let ic = open_in_bin file in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        match Obs.Json.parse s with
        | Ok _ -> pf "%s: valid JSON@." file
        | Error e ->
            ok := false;
            pf "%s: INVALID: %s@." file e)
      files;
    if not !ok then exit 1
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"check that artifact files are valid JSON (CI gate)")
    Term.(const action $ files)

let () =
  let default =
    Term.(
      const all_action $ seed_arg $ csv_arg $ chart_arg $ trace_arg $ metrics_arg $ json_arg)
  in
  let info =
    Cmd.info "bench" ~doc:"Reproduce the tables and figures of Dragojevic et al., PODC 2011"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info (all_cmd :: validate_cmd :: List.map cmd_of_figure figures)))
