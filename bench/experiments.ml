(* The experiment registry: every figure and table of the bench harness
   as data. One experiment = a canonical list of independent {!Runner.Cell}s
   (the unit the domain pool shards) plus a presentation function that
   turns the cell results — always delivered in canonical order — into
   printed tables. `bench/main.ml` is only the CLI around this table.

   The split is the determinism contract made structural: everything that
   affects the output lives in the cells' closures (duration, seed,
   algorithm, period), so the rendered tables and the BENCH_<name>.json
   artifacts are byte-identical whatever --jobs is. *)

type ctx = {
  duration : int;
  seed : int;
  emit : Workload.Report.table -> unit;
      (* print the table and capture it for the JSON artifact *)
  ppf : Format.formatter;  (* for non-tabular prose *)
}

type spec =
  | Spec : {
      cells : duration:int -> seed:int -> 'a Runner.Cell.t list;
      present : ctx -> 'a Runner.Sweep.outcome list -> unit;
    }
      -> spec

type t = {
  name : string;
  doc : string;
  default_duration : int;
  serial : bool;  (* wall-clock experiments that must never shard *)
  in_all : bool;  (* part of `bench all` and its artifact set *)
  profile : bool;  (* cells run with the contention profiler on *)
  spec : spec;
}

let exp ?(serial = false) ?(in_all = true) ?(profile = false) name doc default_duration
    cells present =
  { name; doc; default_duration; serial; in_all; profile; spec = Spec { cells; present } }

let values = Runner.Sweep.values

(* ------------------------------------------------------------------ *)
(* The paper's figures (§5)                                            *)

let fig1 =
  exp "fig1" "queue throughput vs threads" 300_000
    (fun ~duration ~seed -> Workload.Queue_bench.cells ~duration ~seed ())
    (fun ctx ocs -> ctx.emit (Workload.Queue_bench.to_table (values ocs)))

let latency =
  exp "latency" "section 5.1 update latency" 0
    (fun ~duration:_ ~seed -> Workload.Latency.cells ~seed ())
    (fun ctx ocs -> ctx.emit (Workload.Latency.to_table (values ocs)))

let fig3 =
  exp "fig3" "collect-dominated mixed workload" 400_000
    (fun ~duration ~seed -> Workload.Collect_dominated.cells ~duration ~seed ())
    (fun ctx ocs -> ctx.emit (Workload.Collect_dominated.to_table (values ocs)))

let fig4 =
  exp "fig4" "collect-update period sweep" 400_000
    (fun ~duration ~seed -> Workload.Collect_update.cells_fig4 ~duration ~seed ())
    (fun ctx ocs ->
      ctx.emit
        (Workload.Collect_update.to_table
           ~title:"Figure 4: Collect-Update (1 collector, 15 updaters)" (values ocs)))

let fig5 =
  exp "fig5" "step-size comparison" 300_000
    (fun ~duration ~seed -> Workload.Collect_update.cells_fig5 ~duration ~seed ())
    (fun ctx ocs ->
      ctx.emit
        (Workload.Collect_update.to_table
           ~title:"Figure 5: Step sizes for ArrayDynAppendDereg"
           (Workload.Collect_update.fig5_collate (values ocs))))

let fig6 =
  exp "fig6" "adaptive step-size distribution" 400_000
    (fun ~duration ~seed -> Workload.Collect_update.cells_fig6 ~duration ~seed ())
    (fun ctx ocs -> ctx.emit (Workload.Collect_update.fig6_table (values ocs)))

let fig7 =
  exp "fig7" "collect-(de)register sweep" 400_000
    (fun ~duration ~seed -> Workload.Collect_dereg.cells ~duration ~seed ())
    (fun ctx ocs -> ctx.emit (Workload.Collect_dereg.to_table (values ocs)))

let fig8 =
  (* duration here scales the phase length: 6 phases per run *)
  exp "fig8" "phased registered-slot count" 2_000_000
    (fun ~duration ~seed ->
      Workload.Phased.cells ~phase_len:(max 200_000 (duration / 2)) ~seed ())
    (fun ctx ocs -> ctx.emit (Workload.Phased.to_table (values ocs)))

let space =
  exp "space" "space usage at quiescence" 0
    (fun ~duration:_ ~seed ->
      Workload.Space_bench.queue_cells ~seed () @ Workload.Space_bench.collect_cells ~seed ())
    (fun ctx ocs ->
      let qs, cs =
        List.partition
          (fun (r : Workload.Space_bench.result) ->
            String.starts_with ~prefix:"queue/" r.subject)
          (values ocs)
      in
      ctx.emit (Workload.Space_bench.to_table ~title:"Space: queues at peak vs drained" qs);
      ctx.emit
        (Workload.Space_bench.to_table ~title:"Space: collect objects at peak vs deregistered"
           cs))

(* ------------------------------------------------------------------ *)
(* Abort-rate telemetry behind Figures 4/5: the fraction of transaction
   attempts that abort, per algorithm and update period. This is the
   mechanism the paper invokes to explain every degradation curve. *)

let abort_steps = [ Collect.Intf.Fixed 8; Collect.Intf.Fixed 32; Collect.Intf.Adaptive ]
let abort_periods = [ 100_000; 20_000; 8_000; 2_000; 800; 400 ]

let aborts =
  exp "aborts" "abort-rate telemetry behind figs 4/5" 300_000
    (fun ~duration ~seed ->
      let maker = Option.get (Collect.find_maker "ArrayDynAppendDereg") in
      List.concat_map
        (fun period ->
          List.map
            (fun step ->
              Runner.Cell.v
                ~label:
                  (Printf.sprintf "aborts/%s/p%d"
                     (Workload.Collect_update.step_label step) period)
                (fun () ->
                  Workload.Collect_update.run_one maker ~updaters:15 ~period ~duration
                    ~step ~seed))
            abort_steps)
        abort_periods)
    (fun ctx ocs ->
      let vs = Array.of_list (values ocs) in
      let nsteps = List.length abort_steps in
      let rows =
        List.mapi
          (fun pi period ->
            ( Workload.Collect_update.period_label period,
              List.mapi
                (fun si _ ->
                  let r : Workload.Collect_update.result = vs.((pi * nsteps) + si) in
                  (* Updater transactions essentially never abort, so the
                     abort count is attributable to the collector's chunks. *)
                  let collects =
                    int_of_float
                      (r.throughput *. float_of_int ctx.duration
                      /. float_of_int Workload.Driver.cycles_per_us)
                  in
                  if collects = 0 then None
                  else Some (float_of_int r.aborts /. float_of_int collects))
                abort_steps ))
          abort_periods
      in
      ctx.emit
        {
          Workload.Report.title = "Abort telemetry: ArrayDynAppendDereg collect-update";
          xlabel = "period";
          unit = "aborts per collect";
          columns = List.map Workload.Collect_update.step_label abort_steps;
          rows;
        })

(* ------------------------------------------------------------------ *)
(* The robustness experiment: deterministic thread kills, stalls and
   spurious aborts against every algorithm, with the section 2.3 checker
   as the oracle. Duration is fixed by the fault schedule, so --duration
   is ignored; --seed reproduces the exact run. *)

let chaos =
  exp "chaos" "fault injection: crashes, stalls, spurious aborts" 0
    (fun ~duration:_ ~seed -> Workload.Chaos_bench.cells ~seed ())
    (fun ctx ocs ->
      let s = Workload.Chaos_bench.summary_of_pieces (values ocs) in
      List.iter
        (fun (table, note) ->
          ctx.emit table;
          Format.fprintf ctx.ppf "@.%s@." note)
        (Workload.Chaos_bench.tables s))

(* ------------------------------------------------------------------ *)
(* The degradation lattice: fallback policy x thread count on big
   transactions, hybrid-TM interference, and mid-commit-crash liveness.
   The chaos piece's duration is fixed by its fault schedule; --duration
   scales the throughput sweeps. *)

let fallback =
  exp "fallback" "fallback policies: HTM -> STM -> TLE degradation" 300_000
    (fun ~duration ~seed -> Workload.Fallback_bench.cells ~duration ~seed ())
    (fun ctx ocs ->
      let s = Workload.Fallback_bench.summary_of_pieces (values ocs) in
      List.iter
        (fun (table, note) ->
          ctx.emit table;
          if note <> "" then Format.fprintf ctx.ppf "@.%s@." note)
        (Workload.Fallback_bench.tables s))

(* ------------------------------------------------------------------ *)
(* The memory-ordering matrix: the linearizability search and the litmus
   enumeration re-run under every Sim.Memmodel variant. Duration is
   fixed by the search budgets and the exhaustive litmus enumeration, so
   --duration is ignored; --seed shifts the search seed sequence. *)

let memorder =
  exp "memorder" "memory models: fence hunting and litmus per variant" 0
    (fun ~duration:_ ~seed -> Workload.Memorder_bench.cells ~seed ())
    (fun ctx ocs ->
      let s = Workload.Memorder_bench.summary_of_pieces (values ocs) in
      List.iter
        (fun (table, note) ->
          ctx.emit table;
          Format.fprintf ctx.ppf "@.%s@." note)
        (Workload.Memorder_bench.tables s))

(* ------------------------------------------------------------------ *)
(* The coherence-contention profile: run the paper's two extremes of
   reclamation-induced cache traffic — hand-over-hand reference counting
   (every traversal writes reference counts, starting at the list header,
   so the header line ping-pongs between all cores) and ROP (readers
   publish hazard pointers to per-thread slots and nodes are reclaimed in
   bulk) — and attribute every coherence transfer to the labeled region
   it hit. The merged ranked heatmap is the paper's §5 "why HoHRC loses"
   argument made mechanical: the HoHRC header line outranks every ROP
   line. *)

type contend_piece =
  | C_hohrc of Workload.Collect_update.result
  | C_churn of Workload.Collect_update.churn_result
  | C_rop of Workload.Queue_bench.result

let contend =
  exp "contend" "coherence-contention profile: HoHRC vs ROP" 300_000 ~profile:true
    (fun ~duration ~seed ->
      let hohrc = Option.get (Collect.find_maker "ListHoHRC") in
      let rop = Option.get (Hqueue.find_maker "MichaelScott+ROP") in
      [
        Runner.Cell.v ~label:"contend/ListHoHRC" (fun () ->
            C_hohrc
              (Workload.Collect_update.run_one hohrc ~updaters:15 ~period:1_000 ~duration
                 ~step:(Collect.Intf.Fixed 8) ~seed));
        (* Registration churn is where the header line stops being mere
           coherence traffic and starts killing transactions: every head
           insertion that commits invalidates the header word under the
           collects in flight. Sized (16 threads, half window) so its
           header conflicts dominate the experiment's witness total —
           this cell is the known truth `bench doctor contend` exists to
           attribute. *)
        Runner.Cell.v ~label:"contend/ListHoHRC-churn" (fun () ->
            C_churn
              (Workload.Collect_update.churn_one hohrc ~threads:16
                 ~duration:(max 40_000 (duration / 2)) ~seed));
        (* Matched operation budget: per queue operation the ROP queue is
           an order of magnitude faster than a HoHRC traversal, so equal
           wall windows would compare 10x the operations and swamp the
           per-op story. A window one twelfth as long puts both workloads
           in the same operation ballpark; the context table above is
           per-microsecond and unaffected. *)
        Runner.Cell.v ~label:"contend/MichaelScott+ROP" (fun () ->
            C_rop
              (Workload.Queue_bench.run_one rop ~threads:4
                 ~duration:(max 20_000 (duration / 12)) ~prefill:64 ~seed));
        (* The hot variant exists for the abort story's other half: at 12
           threads the queue's CAS retries actually fail, and their
           witnesses land on the nodes and hazard slots each operation
           happened to touch — payload spread, the opposite shape of the
           churn cell's header pile-up. *)
        Runner.Cell.v ~label:"contend/MichaelScott+ROP-hot" (fun () ->
            C_rop
              (Workload.Queue_bench.run_one rop ~threads:12
                 ~duration:(max 20_000 (duration / 12)) ~prefill:64 ~seed));
      ])
    (fun ctx ocs ->
      let r, c, q, qh =
        match values ocs with
        | [ C_hohrc r; C_churn c; C_rop q; C_rop qh ] -> (r, c, q, qh)
        | _ -> assert false
      in
      ctx.emit
        {
          Workload.Report.title = "Contention workloads (context)";
          xlabel = "workload";
          unit = "ops/us";
          columns = [ "throughput" ];
          rows =
            [
              ("ListHoHRC collect-update", [ Some r.throughput ]);
              ("ListHoHRC registration churn", [ Some c.churn_throughput ]);
              ("MichaelScott+ROP queue", [ Some q.throughput ]);
              ("MichaelScott+ROP queue x12", [ Some qh.throughput ]);
            ];
        };
      (* Per-machine heatmaps, then the merged ranking across machines. *)
      let profs = Runner.Sweep.profilers ocs in
      let pf fmt = Format.fprintf ctx.ppf fmt in
      List.iter
        (fun (mach, p) ->
          pf "== Contention: %s (%d transfers) ==@." mach (Obs.Profiler.total_transfers p);
          Obs.Profiler.print ~top:8 ctx.ppf p)
        profs;
      let entries =
        List.concat_map
          (fun (mach, p) -> List.map (fun ls -> (mach, ls)) (Obs.Profiler.lines ~top:12 p))
          profs
      in
      let ranked =
        List.sort
          (fun (_, a) (_, b) ->
            Int.compare b.Obs.Profiler.ls_transfers a.Obs.Profiler.ls_transfers)
          entries
      in
      let top n l = List.filteri (fun i _ -> i < n) l in
      pf "== Contention: all machines ranked by coherence transfers ==@.";
      Obs.Table.print_cols ctx.ppf
        [ "machine"; "line"; "region"; "transfers"; "miss cycles"; "queue wait";
          "peak sharers" ]
        (List.map
           (fun (mach, ls) ->
             [
               mach;
               string_of_int ls.Obs.Profiler.ls_line;
               ls.ls_region;
               string_of_int ls.ls_transfers;
               string_of_int ls.ls_cycles;
               string_of_int ls.ls_wait;
               string_of_int ls.ls_max_sharers;
             ])
           (top 16 ranked));
      pf "@.")

(* ------------------------------------------------------------------ *)
(* Ablations (paper §6)                                                *)

type ablate_piece =
  | A_tle of float * int  (* throughput, lock fallbacks *)
  | A_sandbox of string  (* run verdict *)
  | A_sb of float * int  (* throughput, largest step discovered *)

(* TLE: the paper notes the algorithms can run without any transactional
   progress guarantee by falling back to a lock (§6). Compare native
   retry against TLE fallback under contention. *)
let ablate_tle_one ~duration ~seed config =
  let maker = Option.get (Collect.find_maker "ArrayDynAppendDereg") in
  let m = Workload.Driver.machine ~htm_config:config ~seed () in
  let cfg =
    { Collect.Intf.max_slots = 128; num_threads = 16; step = Collect.Intf.Fixed 16;
      min_size = 4 }
  in
  let inst = maker.make m.htm m.boot cfg in
  let deadline = Workload.Driver.warmup + duration in
  let collects = ref 0 in
  let measuring = ref true in
  let collector ctx =
    let buf = Sim.Ibuf.create () in
    collects :=
      Workload.Driver.measured_loop ctx ~deadline (fun () ->
          Sim.Ibuf.clear buf;
          inst.collect ctx buf);
    measuring := false
  in
  let updater ctx =
    let hs = Array.init 4 (fun _ -> inst.register ctx (Workload.Driver.fresh_value ())) in
    Workload.Driver.periodic_loop ctx ~deadline ~period:2_000 (fun () ->
        inst.update ctx hs.(0) (Workload.Driver.fresh_value ()));
    while !measuring do
      Sim.tick ctx 2000
    done;
    Array.iter (fun h -> inst.deregister ctx h) hs
  in
  Sim.run ~seed (Array.init 16 (fun i -> if i = 0 then collector else updater));
  let st = Htm.stats m.htm in
  A_tle (Workload.Driver.ops_per_us ~ops:!collects ~duration, st.lock_fallbacks)

(* Sandboxing (paper footnote 1 / §6): a transaction that loads a
   pointer, stalls, and dereferences it after a concurrent thread has
   freed the target — exactly the pattern of FastCollect's unpinned
   traversal cursor. A sandboxed HTM aborts and retries; an unsandboxed
   one segfaults. *)
let ablate_sandbox_one ~seed sandboxed =
  let config = { Htm.default_config with sandboxed } in
  let mem = Simmem.create () in
  let htm = Htm.create ~config mem in
  let boot = Sim.boot ~seed () in
  let box = Simmem.malloc mem boot 1 in
  let target = Simmem.malloc mem boot 2 in
  Simmem.write mem boot target 41;
  Simmem.write mem boot box target;
  let reader ctx =
    let v =
      Htm.atomic htm ctx (fun tx ->
          let p = Htm.read tx box in
          (* stall with the pointer in hand *)
          Sim.advance_to ctx (Sim.clock ctx + 2_000);
          Htm.read tx p)
    in
    ignore v
  in
  let mutator ctx =
    Sim.advance_to ctx 500;
    let fresh = Simmem.malloc mem ctx 2 in
    Simmem.write mem ctx fresh 42;
    Simmem.write mem ctx box fresh;
    Simmem.free mem ctx target
  in
  match Sim.run ~seed [| reader; mutator |] with
  | () -> A_sandbox "completed (transaction aborted and retried)"
  | exception Simmem.Fault f -> A_sandbox (Format.asprintf "SEGFAULT: %a" Simmem.pp_fault f)

(* Store-buffer capacity sweep: the adaptive controller must discover the
   largest step each buffer admits. *)
let sb_buffers = [ 8; 16; 32; 64 ]

let ablate_sb_one ~duration ~seed sb =
  let maker = Option.get (Collect.find_maker "ArrayDynAppendDereg") in
  let config = { Htm.default_config with store_buffer = sb } in
  let m = Workload.Driver.machine ~htm_config:config ~seed () in
  let cfg =
    { Collect.Intf.max_slots = 128; num_threads = 2; step = Collect.Intf.Adaptive;
      min_size = 4 }
  in
  let inst = maker.make m.htm m.boot cfg in
  let deadline = Workload.Driver.warmup + duration in
  let collects = ref 0 in
  let measuring = ref true in
  let bodies =
    [|
      (fun ctx ->
        let buf = Sim.Ibuf.create () in
        collects :=
          Workload.Driver.measured_loop ctx ~deadline (fun () ->
              Sim.Ibuf.clear buf;
              inst.collect ctx buf);
        measuring := false);
      (fun ctx ->
        let hs =
          Array.init 64 (fun _ -> inst.register ctx (Workload.Driver.fresh_value ()))
        in
        while !measuring do
          Sim.tick ctx 2000
        done;
        Array.iter (fun h -> inst.deregister ctx h) hs);
    |]
  in
  Sim.run ~seed bodies;
  let top_step = List.fold_left (fun acc (s, _) -> max acc s) 0 (inst.step_histogram ()) in
  A_sb (Workload.Driver.ops_per_us ~ops:!collects ~duration, top_step)

let ablate =
  exp "ablate" "section 6 ablations" 200_000
    (fun ~duration ~seed ->
      [
        Runner.Cell.v ~label:"ablate/tle/native" (fun () ->
            ablate_tle_one ~duration ~seed Htm.default_config);
        Runner.Cell.v ~label:"ablate/tle/after4" (fun () ->
            ablate_tle_one ~duration ~seed
              { Htm.default_config with tle = Htm.Tle_after 4 });
        Runner.Cell.v ~label:"ablate/sandbox/on" (fun () -> ablate_sandbox_one ~seed true);
        Runner.Cell.v ~label:"ablate/sandbox/off" (fun () -> ablate_sandbox_one ~seed false);
      ]
      @ List.map
          (fun sb ->
            Runner.Cell.v
              ~label:(Printf.sprintf "ablate/store-buffer/%d" sb)
              (fun () -> ablate_sb_one ~duration ~seed sb))
          sb_buffers)
    (fun ctx ocs ->
      match values ocs with
      | A_tle (native, _) :: A_tle (tle, fallbacks) :: A_sandbox on :: A_sandbox off :: sbs
        ->
        ctx.emit
          {
            Workload.Report.title = "Ablation: TLE fallback (collect-update, period 2k)";
            xlabel = "mode";
            unit = "ops/us";
            columns = [ "throughput"; "lock fallbacks" ];
            rows =
              [
                ("native retry", [ Some native; Some 0.0 ]);
                ("TLE after 4 aborts", [ Some tle; Some (float_of_int fallbacks) ]);
              ];
          };
        Format.fprintf ctx.ppf
          "== Ablation: sandboxing (dangling dereference inside a transaction) ==@.";
        Format.fprintf ctx.ppf "sandboxed HTM:     %s@." on;
        Format.fprintf ctx.ppf "unsandboxed HTM:   %s@.@." off;
        ctx.emit
          {
            Workload.Report.title =
              "Ablation: store-buffer capacity (adaptive step discovery)";
            xlabel = "buffer";
            unit = "ops/us";
            columns = [ "collect throughput"; "largest step setting" ];
            rows =
              List.map2
                (fun sb piece ->
                  match piece with
                  | A_sb (thru, top_step) ->
                    ( string_of_int sb,
                      [ Some thru; Some (float_of_int top_step) ] )
                  | _ -> assert false)
                sb_buffers sbs;
          }
      | _ -> assert false)

(* ------------------------------------------------------------------ *)
(* Extension variants (paper §3.1.2 and §4.1, described but not
   implemented there)                                                  *)

type ext_piece =
  | E_thru of float  (* a single throughput number (starvation / queue cells) *)
  | E_lat of Workload.Latency.result
  | E_coll of Workload.Collect_update.result

(* The §3.1.2 starvation scenario: a large stable handle population keeps
   collects long, while churners rapidly cycle one volatile slot each.
   Plain FastCollect restarts on every deregister anywhere; the deferred
   variant restarts only when its own cursor's node is hit. *)
let ext_starvation ~duration ~seed mk churn_period =
  let m = Workload.Driver.machine ~seed () in
  let churners = 15 in
  let cfg =
    { Collect.Intf.max_slots = 256; num_threads = churners + 1;
      step = Collect.Intf.Adaptive; min_size = 4 }
  in
  let inst = mk.Collect.Intf.make m.htm m.boot cfg in
  let deadline = Workload.Driver.warmup + duration in
  let collects = ref 0 in
  let measuring = ref true in
  let collector ctx =
    let buf = Sim.Ibuf.create () in
    collects :=
      Workload.Driver.measured_loop ctx ~deadline (fun () ->
          Sim.Ibuf.clear buf;
          inst.collect ctx buf);
    measuring := false
  in
  let churner ctx =
    let stable =
      Array.init 4 (fun _ -> inst.register ctx (Workload.Driver.fresh_value ()))
    in
    let volatile = ref (inst.register ctx (Workload.Driver.fresh_value ())) in
    let next = ref Workload.Driver.warmup in
    while !next < deadline do
      Sim.advance_to ctx !next;
      inst.deregister ctx !volatile;
      Sim.advance_to ctx (!next + (churn_period / 2));
      volatile := inst.register ctx (Workload.Driver.fresh_value ());
      next := !next + churn_period
    done;
    while !measuring do
      Sim.tick ctx 2000
    done;
    inst.deregister ctx !volatile;
    Array.iter (fun h -> inst.deregister ctx h) stable
  in
  Sim.run ~seed (Array.init (churners + 1) (fun i -> if i = 0 then collector else churner));
  inst.destroy m.boot;
  Workload.Driver.ops_per_us ~ops:!collects ~duration

(* Michael-Scott reclaimed through a Dynamic Collect object vs the fixed
   hazard array: same discipline, dynamic announcement space. *)
let ext_queue_one ~duration ~seed ~threads name =
  let mk = Option.get (Hqueue.find_maker name) in
  let m = Workload.Driver.machine ~seed () in
  let q = mk.make m.htm m.boot ~num_threads:threads in
  let deadline = Workload.Driver.warmup + duration in
  let ops = Array.make threads 0 in
  Sim.run ~seed
    (Array.init threads (fun i ->
         fun ctx ->
           ops.(i) <-
             Workload.Driver.measured_loop ctx ~deadline (fun () ->
                 if Sim.Rng.bool (Sim.rng ctx) then
                   q.enqueue ctx (Workload.Driver.fresh_value ())
                 else ignore (q.dequeue ctx))));
  q.destroy m.boot;
  Workload.Driver.ops_per_us ~ops:(Array.fold_left ( + ) 0 ops) ~duration

let ext_starve_periods = [ 50_000; 20_000; 10_000; 5_000; 2_000; 1_000 ]
let ext_starve_makers = [ "ListFastCollect"; "ListFastCollectDeferred" ]
let ext_queue_threads = [ 2; 4; 8; 16 ]
let ext_queue_names = [ "MichaelScott+ROP"; "MichaelScott+Collect" ]
let ext_coll_periods = [ 100_000; 10_000; 2_000 ]
let ext_upd_variants = [ "ArrayDynAppendDereg"; "ArrayDynAppendFastUpd" ]

let ext =
  exp "ext" "paper-described but unimplemented variants" 300_000
    (fun ~duration ~seed ->
      List.concat_map
        (fun p ->
          List.map
            (fun name ->
              let mk = Option.get (Collect.find_maker name) in
              Runner.Cell.v ~label:(Printf.sprintf "ext/starve/%s/p%d" name p) (fun () ->
                  E_thru (ext_starvation ~duration ~seed mk p)))
            ext_starve_makers)
        ext_starve_periods
      @ List.concat_map
          (fun threads ->
            List.map
              (fun name ->
                Runner.Cell.v ~label:(Printf.sprintf "ext/queue/%s/x%d" name threads)
                  (fun () -> E_thru (ext_queue_one ~duration ~seed ~threads name)))
              ext_queue_names)
          ext_queue_threads
      @ List.map
          (fun name ->
            let mk = Option.get (Collect.find_maker name) in
            Runner.Cell.v ~label:("ext/latency/" ^ name) (fun () ->
                E_lat (Workload.Latency.run_one mk ~handles:16 ~updates:2000 ~seed)))
          ext_upd_variants
      @ List.concat_map
          (fun period ->
            List.map
              (fun name ->
                let mk = Option.get (Collect.find_maker name) in
                Runner.Cell.v ~label:(Printf.sprintf "ext/collect/%s/p%d" name period)
                  (fun () ->
                    E_coll
                      (Workload.Collect_update.run_one mk ~updaters:15 ~period ~duration
                         ~step:(Collect.Intf.Fixed 32) ~seed)))
              ext_upd_variants)
          ext_coll_periods)
    (fun ctx ocs ->
      let vs = Array.of_list (values ocs) in
      let thru i = match vs.(i) with E_thru t -> Some t | _ -> assert false in
      let nstarve = List.length ext_starve_makers in
      ctx.emit
        {
          Workload.Report.title =
            "Extension: deferred-free FastCollect, 60 stable handles + 15 churning \
             (section 3.1.2)";
          xlabel = "churn period";
          unit = "ops/us";
          columns = ext_starve_makers;
          rows =
            List.mapi
              (fun pi p ->
                ( Workload.Collect_update.period_label p,
                  List.mapi (fun mi _ -> thru ((pi * nstarve) + mi)) ext_starve_makers ))
              ext_starve_periods;
        };
      let qbase = List.length ext_starve_periods * nstarve in
      let nqueue = List.length ext_queue_names in
      ctx.emit
        {
          Workload.Report.title =
            "Extension: reclamation via fixed hazard array vs Dynamic Collect (section \
             1.2)";
          xlabel = "threads";
          unit = "ops/us";
          columns = ext_queue_names;
          rows =
            List.mapi
              (fun ti threads ->
                ( string_of_int threads,
                  List.mapi (fun qi _ -> thru (qbase + (ti * nqueue) + qi)) ext_queue_names
                ))
              ext_queue_threads;
        };
      let lbase = qbase + (List.length ext_queue_threads * nqueue) in
      let lat =
        List.mapi
          (fun i _ ->
            match vs.(lbase + i) with E_lat r -> r | _ -> assert false)
          ext_upd_variants
      in
      ctx.emit
        { (Workload.Latency.to_table lat) with
          title = "Extension: update latency of the section 4.1 variant" };
      let cbase = lbase + List.length ext_upd_variants in
      let coll =
        List.init
          (List.length ext_coll_periods * List.length ext_upd_variants)
          (fun i -> match vs.(cbase + i) with E_coll r -> r | _ -> assert false)
      in
      ctx.emit
        (Workload.Collect_update.to_table
           ~title:"Extension: collect throughput of the section 4.1 variant" coll))

(* ------------------------------------------------------------------ *)
(* The scaling study: the flat simulator core removes the Rock-era
   16-thread ceiling, so re-ask the paper's headline questions at 64, 128
   and 256 simulated threads on million-word heaps. Byte-deterministic
   like every other artifact experiment; EXPERIMENTS.md records which
   fig1/fig3 shapes survive the scale-up. *)

let scale =
  exp "scale" "the 16-256-thread scaling study (fig1/fig3 shapes)" 200_000
    (fun ~duration ~seed -> Workload.Scale_bench.cells ~duration ~seed ())
    (fun ctx ocs ->
      List.iter ctx.emit (Workload.Scale_bench.to_tables (values ocs)))

(* ------------------------------------------------------------------ *)
(* The malloc-placement ablation: the arena allocator's placement
   policies under a line-granularity HTM. Profiled, so the ping-pong
   (transfers) column in the tables is populated; the per-machine
   profiler tables stay out of the artifact (only emitted tables are
   compared), matching contend. *)

let placement =
  exp "placement" "malloc placement: arena policies vs aborts and ping-pong" 300_000
    ~profile:true
    (fun ~duration ~seed -> Workload.Placement_bench.cells ~duration ~seed ())
    (fun ctx ocs ->
      List.iter ctx.emit (Workload.Placement_bench.to_tables (values ocs)))

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: wall-clock cost of the simulator itself.
   Inherently non-deterministic, so: serial, and never part of `all` or
   the artifact set. *)

let micro_tests () =
  let open Bechamel in
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  let word = Simmem.malloc mem boot 8 in
  let tx_rw =
    Test.make ~name:"htm: atomic read+write"
      (Staged.stage (fun () ->
           Htm.atomic htm boot (fun tx -> Htm.write tx word (Htm.read tx word + 1))))
  in
  let mem_rw =
    Test.make ~name:"simmem: read+write"
      (Staged.stage (fun () -> Simmem.write mem boot word (Simmem.read mem boot word + 1)))
  in
  let q = Hqueue.Htm_queue.maker.make htm boot ~num_threads:2 in
  let queue_cycle =
    Test.make ~name:"htm queue: enqueue+dequeue"
      (Staged.stage (fun () ->
           q.enqueue boot 1;
           ignore (q.dequeue boot)))
  in
  let maker = Option.get (Collect.find_maker "ArrayDynAppendDereg") in
  let inst =
    maker.make htm boot
      { Collect.Intf.max_slots = 128; num_threads = 2; step = Collect.Intf.Fixed 32;
        min_size = 4 }
  in
  let (_ : int array) = Array.init 64 (fun i -> inst.register boot (i + 1)) in
  let buf = Sim.Ibuf.create () in
  let collect64 =
    Test.make ~name:"collect: ArrayDynAppendDereg over 64 slots"
      (Staged.stage (fun () ->
           Sim.Ibuf.clear buf;
           inst.collect boot buf))
  in
  let spawn =
    Test.make ~name:"sim: run of 4 trivial threads"
      (Staged.stage (fun () -> Sim.run ~seed:1 (Array.make 4 (fun ctx -> Sim.tick ctx 10))))
  in
  (* Two threads with interleaved clocks: every tick crosses the other
     thread's clock, so each of the 800 ticks is one scheduler switch
     (effect perform + pick + continue). ns/run divided by 800 is the
     per-switch cost that dominates contended cells. *)
  let switch =
    let body ctx =
      for _ = 1 to 400 do
        Sim.tick ctx 10
      done
    in
    Test.make ~name:"sim: 800 forced context switches"
      (Staged.stage (fun () -> Sim.run ~seed:1 [| body; body |]))
  in
  [ mem_rw; tx_rw; queue_cycle; collect64; spawn; switch ]

let run_micro () =
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysis = Analyze.all ols instance results in
      Hashtbl.fold
        (fun name ols_result acc ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] -> Some est
            | Some _ | None -> None
          in
          (name, est) :: acc)
        analysis [])
    (micro_tests ())

let micro =
  exp "micro" "bechamel microbenchmarks" 0 ~serial:true ~in_all:false
    (fun ~duration:_ ~seed:_ ->
      [ Runner.Cell.v ~label:"micro/bechamel" (fun () -> run_micro ()) ])
    (fun ctx ocs ->
      let pf fmt = Format.fprintf ctx.ppf fmt in
      pf "== Microbenchmarks: wall-clock cost of simulator primitives ==@.";
      List.iter
        (fun lines ->
          List.iter
            (fun (name, est) ->
              match est with
              | Some est -> pf "%-45s %8.1f ns/run@." name est
              | None -> pf "%-45s (no estimate)@." name)
            lines)
        (values ocs);
      pf "@.")

(* ------------------------------------------------------------------ *)

let all =
  [ fig1; latency; fig3; fig4; fig5; fig6; fig7; fig8; space; contend; chaos; fallback;
    memorder; aborts; ablate; ext; scale; placement; micro ]

let find name = List.find_opt (fun e -> e.name = name) all

let cell_count e ~duration ~seed =
  match e.spec with Spec s -> List.length (s.cells ~duration ~seed)

(* Run one experiment end to end: build its canonical cells, execute them
   on up to [jobs] domains, fold the per-cell metrics into [absorb_into]
   in canonical order, then present. Serial experiments ignore [jobs].
   Returns the per-machine forensics aggregators (labelled, canonical
   cell order; empty unless [forensics] was set). *)
let run e ?(jobs = 1) ?(forensics = false) ?tracer ?absorb_into ?(times = false) ctx
    =
  match e.spec with
  | Spec s ->
    let jobs = if e.serial then 1 else jobs in
    let cells = s.cells ~duration:ctx.duration ~seed:ctx.seed in
    let outcomes =
      Runner.Sweep.run ~jobs ~metrics:(absorb_into <> None) ~profile:e.profile
        ~forensics ?tracer cells
    in
    (match absorb_into with
    | Some reg -> Runner.Sweep.absorb ~into:reg outcomes
    | None -> ());
    s.present ctx outcomes;
    if times then Obs.Table.print ctx.ppf (Runner.Sweep.timing_table outcomes);
    Runner.Sweep.forensics outcomes
